type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* A float literal valid in JSON: no "inf"/"nan" (callers map those to
   Null), and always round-trippable. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | String s -> Buffer.add_string buf (escape s)
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let rec pretty buf indent v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List vs when List.for_all (function List _ | Obj _ -> false | _ -> true) vs ->
      (* Flat lists of scalars (table rows, header lists) stay on one line. *)
      to_buffer buf v
  | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          pretty buf (indent + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          pretty buf (indent + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  if compact then to_buffer buf v else pretty buf 0 v;
  Buffer.contents buf

let write ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* Table cells that look like numbers become numbers; "8/16", "never",
   topology names and the like stay strings. The leading-character check
   keeps float_of_string's "nan"/"infinity"/"0x2" parses out. *)
let cell s =
  let numeric_start =
    s <> ""
    &&
    let c = s.[0] in
    c = '-' || c = '+' || c = '.' || (c >= '0' && c <= '9')
  in
  if not numeric_start then String s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f when Float.is_finite f && not (String.contains s 'x') -> Float f
        | _ -> String s)

let of_table ?title t =
  Obj
    [
      ("title", match title with Some s -> String s | None -> Null);
      ("headers", List (List.map (fun h -> String h) (Table.headers t)));
      ( "rows",
        List (List.map (fun row -> List (List.map cell row)) (Table.to_rows t)) );
    ]

let of_summary (s : Summary.t) =
  Obj
    [
      ("count", Int s.Summary.count);
      ("mean", Float s.Summary.mean);
      ("stddev", Float s.Summary.stddev);
      ("min", Float s.Summary.min);
      ("max", Float s.Summary.max);
      ("median", Float s.Summary.median);
      ("p10", Float s.Summary.p10);
      ("p90", Float s.Summary.p90);
      ("p99", Float s.Summary.p99);
    ]

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* ---- parsing ---------------------------------------------------------- *)

(* A recursive-descent RFC 8259 parser, the inverse of the serializer: it
   exists so traces and bench reports written by this module can be read
   back and round-trip-tested without an external dependency. Numbers
   without '.', 'e' or 'E' parse as [Int]; escape sequences including
   [\uXXXX] (and surrogate pairs) decode to UTF-8 bytes. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "offset %d: expected %C, found %C" !pos c c'
    | None -> fail "offset %d: expected %C, found end of input" !pos c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "offset %d: invalid literal" !pos
  in
  let hex4 () =
    if !pos + 4 > n then fail "offset %d: truncated \\u escape" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail "offset %d: bad hex digit %C in \\u escape" !pos c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "offset %d: unterminated string" !pos
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "offset %d: dangling backslash" !pos
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let cp = hex4 () in
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    (* High surrogate: a low surrogate must follow. *)
                    if
                      !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo < 0xDC00 || lo > 0xDFFF then
                        fail "offset %d: invalid low surrogate" !pos;
                      add_utf8 buf
                        (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                    end
                    else fail "offset %d: lone high surrogate" !pos
                  end
                  else if cp >= 0xDC00 && cp <= 0xDFFF then
                    fail "offset %d: lone low surrogate" !pos
                  else add_utf8 buf cp
              | c -> fail "offset %d: unknown escape \\%C" !pos c));
          go ()
      | Some c when Char.code c < 0x20 ->
          fail "offset %d: raw control character in string" !pos
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "offset %d: expected digits" !pos
    in
    let int_start = !pos in
    digits ();
    (* RFC 8259: a leading zero may only stand alone ("0", "0.5"). *)
    if !pos - int_start > 1 && s.[int_start] = '0' then
      fail "offset %d: leading zero in number" int_start;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "offset %d: unexpected end of input" !pos
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let pair () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let members = ref [ pair () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            members := pair () :: !members;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !members)
        end
    | Some c -> fail "offset %d: unexpected character %C" !pos c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "offset %d: trailing garbage" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception _ -> Error "malformed JSON"
