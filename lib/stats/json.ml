type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* A float literal valid in JSON: no "inf"/"nan" (callers map those to
   Null), and always round-trippable. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | String s -> Buffer.add_string buf (escape s)
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let rec pretty buf indent v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List vs when List.for_all (function List _ | Obj _ -> false | _ -> true) vs ->
      (* Flat lists of scalars (table rows, header lists) stay on one line. *)
      to_buffer buf v
  | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          pretty buf (indent + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 1);
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          pretty buf (indent + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  if compact then to_buffer buf v else pretty buf 0 v;
  Buffer.contents buf

let write ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* Table cells that look like numbers become numbers; "8/16", "never",
   topology names and the like stay strings. The leading-character check
   keeps float_of_string's "nan"/"infinity"/"0x2" parses out. *)
let cell s =
  let numeric_start =
    s <> ""
    &&
    let c = s.[0] in
    c = '-' || c = '+' || c = '.' || (c >= '0' && c <= '9')
  in
  if not numeric_start then String s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f when Float.is_finite f && not (String.contains s 'x') -> Float f
        | _ -> String s)

let of_table ?title t =
  Obj
    [
      ("title", match title with Some s -> String s | None -> Null);
      ("headers", List (List.map (fun h -> String h) (Table.headers t)));
      ( "rows",
        List (List.map (fun row -> List (List.map cell row)) (Table.to_rows t)) );
    ]

let of_summary (s : Summary.t) =
  Obj
    [
      ("count", Int s.Summary.count);
      ("mean", Float s.Summary.mean);
      ("stddev", Float s.Summary.stddev);
      ("min", Float s.Summary.min);
      ("max", Float s.Summary.max);
      ("median", Float s.Summary.median);
      ("p10", Float s.Summary.p10);
      ("p90", Float s.Summary.p90);
      ("p99", Float s.Summary.p99);
    ]

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
