(** Minimal JSON values and serialization — the machine-readable side of the
    experiment harness, with no dependency outside the standard library.

    [bench/main.exe --json PATH] serializes every experiment's tables,
    notes, trial counts and wall-clock times through this module, so perf
    trajectories ([BENCH_<date>.json] files) can be diffed and tracked
    across PRs without scraping the ASCII tables.

    Serialization emits strictly valid JSON (RFC 8259): strings are escaped,
    and non-finite floats — which JSON cannot represent — are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Members are emitted in list order. *)

val escape : string -> string
(** [escape s] is the JSON string literal for [s], including the
    surrounding quotes; quote, backslash and control characters are
    escaped. *)

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) serialization. *)

val to_string : ?compact:bool -> t -> string
(** [to_string v] renders [v] pretty-printed with two-space indentation
    (the format of the checked-in [BENCH_*.json] files);
    [~compact:true] renders the single-line form. *)

val write : path:string -> t -> unit
(** [write ~path v] writes the pretty-printed form plus a trailing newline
    to [path], truncating any existing file. *)

val of_table : ?title:string -> Table.t -> t
(** [of_table t] is [{"title": …, "headers": […], "rows": [[…], …]}]. Cells
    that parse as numbers are emitted as JSON numbers, everything else as
    strings, so slot counts and medians are directly plottable. The
    ["title"] member is [Null] when [title] is omitted. *)

val of_summary : Summary.t -> t
(** All nine summary statistics as a flat object, keys matching the record
    fields of {!Summary.t}. *)

val member : string -> t -> t option
(** [member key v] is the value bound to [key] when [v] is an [Obj]
    containing it. *)

val of_string : string -> (t, string) result
(** Parse one RFC 8259 JSON document (the inverse of {!to_string}): all
    escape sequences including [\uXXXX] and surrogate pairs decode to
    UTF-8, numbers without a fraction or exponent become [Int], duplicate
    object keys are kept in order. Errors carry the byte offset. Values
    written by {!to_string} round-trip exactly, [Float] modulo the usual
    non-finite-to-[Null] mapping. *)
