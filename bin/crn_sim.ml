(* crn_sim: command-line front end for the cognitive radio network simulator.

   Subcommands:
     protocols  — list every protocol in the registry
     run        — run any registered protocol by name, uniformly
     broadcast  — run COGCAST and report completion statistics
     aggregate  — run COGCOMP (and optionally the rendezvous baseline)
     game       — play the §6 hitting games against the closed-form bounds
     backoff    — measure the decay-backoff realization of the slot model
     jam        — broadcast under an n-uniform jammer (Theorem 18 reduction)
     sweep      — sweep n, c or k and report completion scaling
     chaos      — sweep registry protocols across fault rates
     load       — sustained-traffic workloads (gossip/push-sum) under an
                  open-loop load generator: throughput + latency percentiles

   The broadcast/aggregate/game/... subcommands keep their protocol-specific
   reporting; `run` and `chaos` dispatch through Crn_proto.Registry, so any
   newly registered protocol is immediately drivable with --faults, --trace,
   --metrics, --check and --jobs without touching this file.

   Every run is reproducible from --seed: trials execute on a domain pool
   sized by --jobs, with one RNG stream split off per trial up front, so
   the numbers are identical at any --jobs value. *)

open Cmdliner
module Rng = Crn_prng.Rng
module Pool = Crn_exec.Pool
module Trials = Crn_exec.Trials
module Topology = Crn_channel.Topology
module Dynamic = Crn_channel.Dynamic
module Summary = Crn_stats.Summary
module Json = Crn_stats.Json
module Faults = Crn_radio.Faults
module Jammer = Crn_radio.Jammer
module Trace = Crn_radio.Trace
module Runner = Crn_radio.Runner
module Emulation = Crn_radio.Emulation
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Cogcomp_robust = Crn_core.Cogcomp_robust
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity
module Protocol = Crn_proto.Protocol
module Registry = Crn_proto.Registry
module Adversary_lab = Crn_proto.Adversary_lab

(* ---- shared arguments ---- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let trials_arg =
  Arg.(value & opt int 9 & info [ "trials" ] ~docv:"T" ~doc:"Independent trials.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains running trials in parallel. Results are identical at any \
           value, including 1 (the seed determines every trial's stream, \
           not the schedule).")

let n_arg = Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let c_arg =
  Arg.(value & opt int 16 & info [ "c"; "channels" ] ~docv:"C" ~doc:"Channels per node.")

let k_arg =
  Arg.(
    value & opt int 4
    & info [ "k"; "overlap" ] ~docv:"K" ~doc:"Guaranteed pairwise channel overlap.")

let topology_conv =
  let parse s =
    match
      List.find_opt (fun kd -> Topology.kind_name kd = s) Topology.all_kinds
    with
    | Some kd -> Ok kd
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown topology %S (try: %s)" s
               (String.concat ", " (List.map Topology.kind_name Topology.all_kinds))))
  in
  Arg.conv (parse, fun fmt kd -> Format.pp_print_string fmt (Topology.kind_name kd))

let topology_arg =
  Arg.(
    value
    & opt topology_conv Topology.Shared_plus_random
    & info [ "topology" ] ~docv:"KIND"
        ~doc:
          "Overlap pattern: shared-core, identical, shared+random, \
           pairwise-private or clustered.")

let check_params n c k =
  if n < 1 then `Error (false, "n must be at least 1")
  else if k < 1 || k > c then `Error (false, "need 1 <= k <= c")
  else `Ok ()

(* ---- dynamic-spectrum adversaries (--dynamic, §7) ---- *)

let dynamic_conv =
  let parse s =
    match Adversary_lab.mode_of_string s with
    | Ok m -> Ok m
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun fmt m -> Format.pp_print_string fmt (Adversary_lab.mode_name m))

let dynamic_arg =
  Arg.(
    value
    & opt dynamic_conv Adversary_lab.Static
    & info [ "dynamic" ] ~docv:"MODE"
        ~doc:
          "Per-slot channel reassignment policy (§7): $(b,static) (the \
           classic model, default), $(b,rotating) (labels drift cyclically \
           every slot, channel sets unchanged), $(b,reshuffle) (a fresh \
           assignment drawn from the topology every slot, overlap >= k \
           maintained), $(b,isolate) (the Theorem 17 conspiracy: a \
           leaked-seed oracle keeps the source's predicted channel private, \
           stalling COGCAST forever).")

(* Non-static modes must be honored, not silently snapshotted: reject the
   protocols that cannot, with the lab's user-facing message. *)
let check_dynamic ~mode ~spec proto_names =
  let first_error =
    List.find_map
      (fun name ->
        match Adversary_lab.compatible_protocol ~mode name with
        | Error m -> Some m
        | Ok () -> None)
      proto_names
  in
  match (Adversary_lab.validate ~mode ~spec, first_error) with
  | Error m, _ | _, Some m -> `Error (false, m)
  | Ok (), None -> `Ok ()

(* Per-trial availability + run stream for one --dynamic mode, with the
   reassignment provenance events streamed into [?trace] when one is
   recording. *)
let armed_availability ~mode ~topology ~spec ?trace ~rng () =
  let armed = Adversary_lab.arm ~mode ~topology ~spec ~source:0 ~rng in
  let availability =
    match trace with
    | Some tr when mode <> Adversary_lab.Static ->
        Trace.record tr
          (Trace.Adversary
             { name = "dynamic:" ^ Adversary_lab.mode_name mode; budget = 0 });
        Adversary_lab.instrument ~trace:tr armed.Adversary_lab.availability
    | _ -> armed.Adversary_lab.availability
  in
  (availability, armed.Adversary_lab.rng)

(* ---- fault schedule mini-language (--faults / --fault-seed) ---- *)

(* '+'-separated atoms; randomized atoms (naps, churn) draw their coins
   from --fault-seed, so a spec plus a seed is a complete, reproducible
   schedule. [spare] atoms are collected and applied last so they exempt
   the node from every other atom regardless of order. *)
type fault_spec = { text : string; build : seed:int64 -> Faults.t }

let fault_usage =
  "expected '+'-separated atoms: none | crash:NODE:SLOT | \
   restart:NODE:SLOT:DUR | naps:RATE | churn:MEAN_UP:MEAN_DOWN | spare:NODE \
   (e.g. \"naps:0.05+crash:3:40+spare:0\")"

let parse_fault_atom atom =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s (%s)" m fault_usage)) fmt
  in
  let int_field name s f =
    match int_of_string_opt s with
    | Some v when v >= 0 -> f v
    | Some v -> fail "%s in %S must be >= 0, got %d" name atom v
    | None -> fail "%s in %S is not an integer: %S" name atom s
  in
  match String.split_on_char ':' atom with
  | [ "none" ] -> Ok `None
  | [ "crash"; node; slot ] ->
      int_field "NODE" node (fun node ->
          int_field "SLOT" slot (fun from_slot ->
              Ok (`Schedule (fun ~seed:_ -> Faults.crash ~node ~from_slot))))
  | [ "restart"; node; slot; dur ] ->
      int_field "NODE" node (fun node ->
          int_field "SLOT" slot (fun from_slot ->
              int_field "DUR" dur (fun down_for ->
                  if down_for < 1 then fail "DUR in %S must be >= 1" atom
                  else
                    Ok
                      (`Schedule
                        (fun ~seed:_ ->
                          Faults.crash_restart ~node ~from_slot ~down_for)))))
  | [ "naps"; rate ] -> (
      match float_of_string_opt rate with
      | Some r when r >= 0.0 && r < 1.0 ->
          Ok (`Schedule (fun ~seed -> Faults.random_naps ~seed ~rate:r))
      | Some r -> fail "RATE in %S must be in [0, 1), got %g" atom r
      | None -> fail "RATE in %S is not a number: %S" atom rate)
  | [ "churn"; up; down ] -> (
      match (float_of_string_opt up, float_of_string_opt down) with
      | Some mean_up, Some mean_down when mean_up >= 1.0 && mean_down >= 1.0 ->
          Ok (`Schedule (fun ~seed -> Faults.bernoulli_churn ~seed ~mean_up ~mean_down))
      | Some _, Some _ ->
          fail "MEAN_UP and MEAN_DOWN in %S must both be >= 1 (slots)" atom
      | _ -> fail "MEAN_UP:MEAN_DOWN in %S must be numbers" atom)
  | [ "spare"; node ] -> int_field "NODE" node (fun node -> Ok (`Spare node))
  | _ -> fail "unknown fault atom %S" atom

let parse_fault_spec s =
  let atoms = String.split_on_char '+' s |> List.map String.trim in
  let rec go schedules spares = function
    | [] ->
        let build ~seed =
          let base =
            match schedules with
            | [] -> Faults.none
            | first :: rest ->
                List.fold_left
                  (fun acc b -> Faults.union acc (b ~seed))
                  (first ~seed) rest
          in
          List.fold_left (fun acc node -> Faults.spare acc ~node) base spares
        in
        Ok { text = s; build }
    | atom :: rest -> (
        match parse_fault_atom atom with
        | Error _ as e -> e
        | Ok `None -> go schedules spares rest
        | Ok (`Schedule b) -> go (b :: schedules) spares rest
        | Ok (`Spare node) -> go schedules (node :: spares) rest)
  in
  go [] [] atoms

let fault_spec_conv =
  let parse s =
    match parse_fault_spec s with Ok v -> Ok v | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt spec -> Format.pp_print_string fmt spec.text)

let faults_arg =
  Arg.(
    value
    & opt (some fault_spec_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault schedule: '+'-separated atoms of $(b,none), \
           $(b,crash:NODE:SLOT), $(b,restart:NODE:SLOT:DUR), $(b,naps:RATE), \
           $(b,churn:MEAN_UP:MEAN_DOWN) and $(b,spare:NODE) (e.g. \
           \"naps:0.05+spare:0\"). Randomized atoms draw from --fault-seed. \
           A faulted source usually makes broadcast trivially incomplete — \
           spare it unless that is the point.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the randomized fault atoms (naps, churn), independent of \
           --seed so the same schedule can be replayed against different \
           protocol randomness.")

let build_faults faults_spec fault_seed =
  Option.map
    (fun spec -> spec.build ~seed:(Int64.of_int fault_seed))
    faults_spec

(* ---- observability (--trace / --metrics / --check) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record one instrumented run's slot-level event trace and write it \
           as JSON Lines (one event object per line) to $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Derive the metrics registry (counters and histograms) from one \
           instrumented run's trace and write it as JSON to $(docv).")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Replay one instrumented run's trace through the invariant \
           checkers (one winner per channel per slot, informer precedes \
           informee, phase-4 conservation). Exits nonzero on violation.")

(* ---- execution backend (--backend / --session-cap) ---- *)

let backend_usage = "expected engine | emulation | emulation-csma | reference | soa"

let backend_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "engine" -> Ok `Engine
    | "emulation" | "emulation-decay" -> Ok (`Emulation Emulation.Decay)
    | "emulation-csma" | "csma" -> Ok (`Emulation Emulation.Csma)
    | "reference" -> Ok `Reference
    | "soa" -> Ok `Soa
    | _ -> Error (`Msg (Printf.sprintf "unknown backend %S (%s)" s backend_usage))
  in
  let print fmt choice =
    Format.pp_print_string fmt
      (match choice with
      | `Engine -> "engine"
      | `Emulation Emulation.Decay -> "emulation"
      | `Emulation Emulation.Csma -> "emulation-csma"
      | `Reference -> "reference"
      | `Soa -> "soa")
  in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv `Engine
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution backend: $(b,engine) (the abstract one-winner engine, \
           default), $(b,emulation) (every slot realized on the raw \
           collision radio by decay-backoff contention sessions, §2 \
           footnote 4), $(b,emulation-csma) (same raw radio, CSMA/CA \
           carrier-sense + ACK/retry contention), $(b,reference) (the \
           list-based executable specification, for differential checks), \
           or $(b,soa) (the struct-of-arrays engine: flat node state, \
           $(b,--shards) domains per trial, byte-identical results to \
           $(b,engine) at any shard count).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Intra-trial shards on the struct-of-arrays engine \
           ($(b,--backend soa), or the $(b,cogcast_soa) protocol): each \
           slot's per-node work splits across $(docv) domains. Composes \
           with $(b,--jobs) (trial-level parallelism); total domains is \
           roughly jobs x shards, so shard only when trials alone cannot \
           fill the machine. Results are identical at any value. Rejected \
           when the selected backend cannot shard a trial.")

let dense_channel_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dense-channel-limit" ] ~docv:"C"
        ~doc:
          "SoA-backend occupancy strategy crossover: spectra up to $(docv) \
           channels use dense per-shard counting arrays, larger spectra \
           fall back to a sparse O(n)-scan merge (the c >> n regime). 0 \
           forces the sparse path; default 4096. Only meaningful with \
           $(b,--backend soa).")

let session_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "session-cap" ] ~docv:"ROUNDS"
        ~doc:
          "Raw-round cap per contention session on the emulation backends \
           (default: the decay budget 4(⌈lg n⌉+1)²). A session that \
           exhausts the cap fails: its broadcasters see No_winner and the \
           slot delivers nothing.")

(* The soa backend is built with [shards = 1]: the shard count always
   enters through --shards / [env.shards] and is folded into the payload
   by {!Protocol.resolve_backend}, so every command reconciles the two the
   same way. *)
let build_backend ?dense_channel_limit choice session_cap =
  match (choice, session_cap, dense_channel_limit) with
  | _, Some v, _ when v < 1 -> Error "--session-cap must be at least 1"
  | _, _, Some v when v < 0 ->
      Error "--dense-channel-limit must be >= 0 (0 forces the sparse scan)"
  | (`Engine | `Emulation _ | `Reference), _, Some _ ->
      Error
        "--dense-channel-limit only applies to the struct-of-arrays backend \
         (--backend soa)"
  | `Emulation strategy, _, _ -> Ok (Runner.Emulation { strategy; session_cap })
  | (`Engine | `Reference | `Soa), Some _, _ ->
      Error
        "--session-cap only applies to the emulation backends (--backend \
         emulation | emulation-csma)"
  | `Engine, None, _ -> Ok Runner.Engine
  | `Reference, None, _ -> Ok Runner.Reference
  | `Soa, None, _ -> Ok (Runner.Soa { shards = 1; dense_channel_limit })

let backend_name = Runner.backend_name

let is_emulation = function Runner.Emulation _ -> true | _ -> false

(* Commands that fan trials out on the domain pool validate the
   --shards/--backend combination eagerly, so a bad pairing fails before
   any trial starts. The cogcast_soa entry (plain or jam_resist-wrapped)
   is exempt: it resolves a plain-engine environment against its own SoA
   default backend. *)
let check_shards ~backend ~shards proto_names =
  let is_soa_native name =
    let suffix = "cogcast_soa" in
    let nl = String.length name and sl = String.length suffix in
    nl >= sl && String.sub name (nl - sl) sl = suffix
  in
  if shards < 1 then Some "--shards must be at least 1"
  else if shards = 1 then None
  else
    List.find_map
      (fun name ->
        if is_soa_native name then None
        else
          try
            ignore (Protocol.resolve_backend ~protocol:name backend ~shards);
            None
          with Invalid_argument m -> Some m)
      proto_names

(* When any of --trace/--metrics/--check was requested, perform one extra
   instrumented run via [f ~trace] (the statistics trials above stay
   untraced, so their wall-clock is unaffected) and export/verify its
   event stream. *)
let observe ~trace_path ~metrics_path ~check f =
  if trace_path = None && metrics_path = None && not check then `Ok ()
  else begin
    let tr = Crn_radio.Trace.create () in
    f ~trace:tr;
    (match trace_path with
    | Some path ->
        Crn_radio.Trace.write_jsonl ~path tr;
        Printf.printf "  wrote trace: %s (%d events)\n" path
          (Crn_radio.Trace.length tr)
    | None -> ());
    (match metrics_path with
    | Some path ->
        let reg = Crn_radio.Metrics.Registry.create () in
        Crn_radio.Metrics.Registry.observe_trace reg tr;
        Crn_stats.Json.write ~path (Crn_radio.Metrics.Registry.to_json reg);
        Printf.printf "  wrote metrics: %s\n" path
    | None -> ());
    if not check then `Ok ()
    else begin
      match Crn_radio.Trace.Check.all tr with
      | [] ->
          Printf.printf "  trace invariants: ok (%d events)\n"
            (Crn_radio.Trace.length tr);
          `Ok ()
      | violations ->
          List.iter
            (fun v ->
              Format.eprintf "  violation: %a@." Crn_radio.Trace.Check.pp_violation v)
            violations;
          `Error
            ( false,
              Printf.sprintf "--check found %d trace invariant violation(s)"
                (List.length violations) )
    end
  end

(* ---- protocols / run: the registry-driven front end ---- *)

let protocols_cmd =
  let run () =
    List.iter
      (fun p -> Printf.printf "%-28s %s\n" (Protocol.name p) (Protocol.synopsis p))
      Registry.all;
    Printf.printf
      "\nEvery entry also resolves as jam_resist:<name>: the Theorem 18 \
       transform\nrunning the protocol unmodified on the jammer's sensed \
       spectrum.\n"
  in
  Cmd.v
    (Cmd.info "protocols" ~doc:"List every protocol in the registry.")
    Term.(const run $ const ())

let run_cmd =
  let run name n c k topology dynamic jam_budget seed trials jobs shards
      backend_choice session_cap dense_channel_limit faults_spec fault_seed
      trace_path metrics_path check =
    match (check_params n c k, Registry.find name) with
    | (`Error _ as e), _ -> e
    | `Ok (), None ->
        `Error
          ( false,
            Printf.sprintf "unknown protocol %S (try: %s, or jam_resist:<name>)"
              name
              (String.concat ", " (Registry.names ())) )
    | `Ok (), _ when shards < 1 -> `Error (false, "shards must be at least 1")
    | `Ok (), _ when jam_budget < 0 ->
        `Error (false, "jam budget must be non-negative")
    | `Ok (), Some proto -> (
        let spec = { Topology.n; c; k } in
        match
          (check_dynamic ~mode:dynamic ~spec [ Protocol.name proto ],
           build_backend ?dense_channel_limit backend_choice session_cap)
        with
        | (`Error _ as e), _ -> e
        | `Ok (), Error m -> `Error (false, m)
        | `Ok (), Ok backend -> (
        try
        let faults = build_faults faults_spec fault_seed in
        (* The spectrum size is determined by the topology spec, so one
           probe assignment tells us C for the jammer. *)
        let jammer =
          if jam_budget = 0 then None
          else
            let probe = Topology.generate topology (Rng.create seed) spec in
            let num_channels = Crn_channel.Assignment.num_channels probe in
            if 2 * jam_budget >= num_channels then
              invalid_arg
                (Printf.sprintf
                   "--jam-budget %d: Theorem 18 needs 2t < C (spectrum here \
                    has C=%d channels)"
                   jam_budget num_channels)
            else
              Some
                (Jammer.random_per_node
                   ~seed:(Int64.of_int fault_seed)
                   ~budget:jam_budget ~num_channels)
        in
        let env ?trace ~rng () =
          let availability, rng =
            armed_availability ~mode:dynamic ~topology ~spec ?trace ~rng ()
          in
          Protocol.env ?faults ?jammer ?trace ~backend ~k ~shards ~availability
            ~rng ()
        in
        let runs =
          Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
              let s = Protocol.run proto (env ~rng ()) in
              let slots =
                match s.Protocol.completed_at with
                | Some v -> float_of_int v
                | None -> float_of_int s.Protocol.slots_run
              in
              ( slots,
                s.Protocol.completed,
                s.Protocol.coverage,
                s.Protocol.raw_rounds,
                s.Protocol.failed_sessions ))
        in
        Printf.printf "%s  n=%d c=%d k=%d topology=%s trials=%d\n"
          (Protocol.name proto) n c k
          (Topology.kind_name topology) trials;
        Printf.printf "  %s\n" (Protocol.synopsis proto);
        (if backend <> Runner.Engine then
           Printf.printf "  backend: %s%s\n" (backend_name backend)
             (match session_cap with
             | Some cap -> Printf.sprintf " (session cap %d)" cap
             | None -> ""));
        (if dynamic <> Adversary_lab.Static then
           Printf.printf "  dynamic: %s reassignment per slot\n"
             (Adversary_lab.mode_name dynamic));
        (match jammer with
        | Some j ->
            Printf.printf "  jammer: %s (budget %d, seed %d)\n" (Jammer.name j)
              (Jammer.budget j) fault_seed
        | None -> ());
        (match faults with
        | Some f ->
            Printf.printf "  faults: %s (seed %d)\n" (Faults.to_string f) fault_seed
        | None -> ());
        Printf.printf "  completion slots: %s\n"
          (Summary.to_string
             (Summary.of_floats (Array.map (fun (s, _, _, _, _) -> s) runs)));
        let completions =
          Array.fold_left
            (fun acc (_, c, _, _, _) -> if c then acc + 1 else acc)
            0 runs
        in
        let mean_coverage =
          Array.fold_left (fun acc (_, _, cov, _, _) -> acc +. cov) 0.0 runs
          /. float_of_int (max 1 trials)
        in
        Printf.printf "  complete: %d/%d; mean coverage: %.3f\n" completions trials
          mean_coverage;
        (if is_emulation backend then
           let raw =
             Summary.of_floats
               (Array.map (fun (_, _, _, r, _) -> float_of_int r) runs)
           in
           let failed =
             Array.fold_left (fun acc (_, _, _, _, f) -> acc + f) 0 runs
           in
           Printf.printf "  raw rounds: %s; failed sessions: %d\n"
             (Summary.to_string raw) failed);
        observe ~trace_path ~metrics_path ~check (fun ~trace ->
            let rng = Rng.create seed in
            ignore (Protocol.run proto (env ~trace ~rng ())))
        with Invalid_argument msg -> `Error (false, msg)))
  in
  let protocol_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "protocol" ] ~docv:"NAME"
          ~doc:
            "Protocol to run; any name listed by $(b,crn_sim protocols) \
             (case-insensitive, '-' and '_' interchangeable), or \
             $(b,jam_resist:NAME) for its Theorem 18 jamming-resistant \
             transform.")
  in
  let jam_budget_arg =
    Arg.(
      value & opt int 0
      & info [ "jam-budget" ] ~docv:"T"
          ~doc:
            "Arm an n-uniform jammer that disrupts $(docv) channels per \
             node per slot (seeded from $(b,--fault-seed)). Plain \
             protocols suffer it raw; $(b,jam_resist:NAME) applies the \
             Theorem 18 transform, which requires 2T strictly below the \
             spectrum size. 0 disables.")
  in
  let term =
    Term.(
      ret
        (const run $ protocol_arg $ n_arg $ c_arg $ k_arg $ topology_arg
       $ dynamic_arg $ jam_budget_arg $ seed_arg $ trials_arg $ jobs_arg
       $ shards_arg $ backend_arg $ session_cap_arg $ dense_channel_limit_arg
       $ faults_arg $ fault_seed_arg $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run any registered protocol by name with the uniform trial, fault \
          and observability machinery.")
    term

(* ---- broadcast ---- *)

let broadcast_cmd =
  let run n c k topology dynamic seed trials jobs shards backend_choice
      session_cap dense_channel_limit baseline faults_spec fault_seed
      trace_path metrics_path check =
    match check_params n c k with
    | `Error _ as e -> e
    | `Ok () -> (
        let spec = { Topology.n; c; k } in
        match
          (check_dynamic ~mode:dynamic ~spec [ "cogcast" ],
           build_backend ?dense_channel_limit backend_choice session_cap)
        with
        | (`Error _ as e), _ -> e
        | `Ok (), Error m -> `Error (false, m)
        | `Ok (), Ok backend -> (
        (* Fold --shards into the backend payload (soa) or reject it
           (anything else) the same way the registry layer does. *)
        match
          try Ok (Protocol.resolve_backend ~protocol:"cogcast" backend ~shards)
          with Invalid_argument m -> Error m
        with
        | Error m -> `Error (false, m)
        | Ok backend ->
        let faults = build_faults faults_spec fault_seed in
        let max_slots = Complexity.cogcast_slots ~n ~c ~k () in
        let samples =
          Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
              let availability, rng =
                armed_availability ~mode:dynamic ~topology ~spec ~rng ()
              in
              let r =
                Cogcast.run ?faults ~backend ~source:0 ~availability ~rng
                  ~max_slots ()
              in
              let slots =
                match r.Cogcast.completed_at with
                | Some s -> float_of_int s
                | None -> float_of_int r.Cogcast.slots_run
              in
              (slots, r.Cogcast.raw_rounds, r.Cogcast.failed_sessions))
        in
        let s =
          Summary.of_floats (Array.map (fun (s, _, _) -> s) samples)
        in
        Printf.printf "COGCAST  n=%d c=%d k=%d topology=%s trials=%d\n" n c k
          (Topology.kind_name topology) trials;
        (if backend <> Runner.Engine then
           Printf.printf "  backend: %s%s\n" (backend_name backend)
             (match session_cap with
             | Some cap -> Printf.sprintf " (session cap %d)" cap
             | None -> ""));
        (if dynamic <> Adversary_lab.Static then
           Printf.printf "  dynamic: %s reassignment per slot\n"
             (Adversary_lab.mode_name dynamic));
        (match faults with
        | Some f -> Printf.printf "  faults: %s (seed %d)\n" (Faults.to_string f) fault_seed
        | None -> ());
        Printf.printf "  completion slots: %s\n" (Summary.to_string s);
        (if is_emulation backend then
           let raw =
             Summary.of_floats
               (Array.map (fun (_, r, _) -> float_of_int r) samples)
           in
           let failed =
             Array.fold_left (fun acc (_, _, f) -> acc + f) 0 samples
           in
           Printf.printf "  raw rounds: %s; failed sessions: %d\n"
             (Summary.to_string raw) failed);
        Printf.printf "  Theorem 4 shape (unit constant): %.1f; budget used: %d\n"
          (Complexity.cogcast ~factor:1.0 ~n ~c ~k ())
          max_slots;
        if baseline then begin
          let proto = Registry.find_exn "broadcast_baseline" in
          let base =
            Trials.run_jobs ~jobs ~trials ~seed:(seed + 1000) (fun rng ->
                let availability, rng =
                  armed_availability ~mode:dynamic ~topology ~spec ~rng ()
                in
                let s =
                  Protocol.run proto
                    (Protocol.env ?faults ~backend ~k ~availability ~rng ())
                in
                match s.Protocol.completed_at with
                | Some v -> float_of_int v
                | None -> float_of_int s.Protocol.slots_run)
          in
          Printf.printf "  rendezvous baseline: %s\n"
            (Summary.to_string (Summary.of_floats base))
        end;
        observe ~trace_path ~metrics_path ~check (fun ~trace ->
            let rng = Rng.create seed in
            let availability, rng =
              armed_availability ~mode:dynamic ~topology ~spec ~trace ~rng ()
            in
            ignore
              (Cogcast.run ?faults ~backend ~trace ~source:0 ~availability ~rng
                 ~max_slots ()))))
  in
  let baseline_arg =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Also run the straw-man rendezvous broadcast baseline (registry \
             protocol $(b,broadcast_baseline)) on an independent seed for \
             comparison.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ k_arg $ topology_arg $ dynamic_arg
       $ seed_arg $ trials_arg $ jobs_arg $ shards_arg $ backend_arg
       $ session_cap_arg $ dense_channel_limit_arg $ baseline_arg $ faults_arg
       $ fault_seed_arg $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v (Cmd.info "broadcast" ~doc:"Run COGCAST local broadcast (Theorem 4).") term

(* ---- aggregate ---- *)

let aggregate_cmd =
  let run n c k topology dynamic seed trials jobs baseline robust faults_spec
      fault_seed trace_path metrics_path check =
    match check_params n c k with
    | `Error _ as e -> e
    | `Ok () when dynamic <> Adversary_lab.Static ->
        `Error
          ( false,
            Printf.sprintf
              "--dynamic %s: aggregate (COGCOMP) runs its phases on the \
               slot-0 assignment and cannot honor per-slot reassignment; \
               see crn_sim run/broadcast/chaos for the dynamic modes"
              (Adversary_lab.mode_name dynamic) )
    | `Ok () ->
        let spec = { Topology.n; c; k } in
        let faults = build_faults faults_spec fault_seed in
        Pool.with_pool ~jobs (fun pool ->
            let header () =
              Printf.printf "COGCOMP%s  n=%d c=%d k=%d topology=%s trials=%d\n"
                (if robust then " (robust)" else "")
                n c k
                (Topology.kind_name topology) trials;
              match faults with
              | Some f ->
                  Printf.printf "  faults: %s (seed %d)\n" (Faults.to_string f)
                    fault_seed
              | None -> ()
            in
            if robust then begin
              let runs =
                Trials.run ~pool ~trials ~seed (fun rng ->
                    let assignment = Topology.generate topology rng spec in
                    let values = Array.init n (fun v -> v) in
                    let r =
                      Cogcomp_robust.run ?faults ~monoid:Aggregate.sum ~values
                        ~source:0 ~assignment ~k ~rng ()
                    in
                    ( float_of_int r.Cogcomp_robust.total_slots,
                      ( r.Cogcomp_robust.complete,
                        r.Cogcomp_robust.coverage,
                        List.length r.Cogcomp_robust.lost,
                        r.Cogcomp_robust.reelections,
                        r.Cogcomp_robust.retries ) ))
              in
              header ();
              let totals = Array.map fst runs in
              Printf.printf "  total slots: %s\n"
                (Summary.to_string (Summary.of_floats totals));
              let completions =
                Array.fold_left
                  (fun acc (_, (c, _, _, _, _)) -> if c then acc + 1 else acc)
                  0 runs
              in
              let sum f = Array.fold_left (fun acc (_, t) -> acc + f t) 0 runs in
              Printf.printf "  complete: %d/%d\n" completions trials;
              Printf.printf "  mean coverage: %.1f/%d nodes; values lost: %d total\n"
                (float_of_int (sum (fun (_, cov, _, _, _) -> cov))
                /. float_of_int trials)
                n
                (sum (fun (_, _, l, _, _) -> l));
              Printf.printf "  mediator re-elections: %d; value-send retries: %d\n"
                (sum (fun (_, _, _, re, _) -> re))
                (sum (fun (_, _, _, _, rt) -> rt))
            end
            else begin
              let runs =
                Trials.run ~pool ~trials ~seed (fun rng ->
                    let assignment = Topology.generate topology rng spec in
                    let values = Array.init n (fun v -> v) in
                    let r =
                      Cogcomp.run ?faults ~monoid:Aggregate.sum ~values ~source:0
                        ~assignment ~k ~rng ()
                    in
                    ( float_of_int r.Cogcomp.total_slots,
                      r.Cogcomp.root_value = Some (n * (n - 1) / 2) ))
              in
              header ();
              let totals = Array.map fst runs in
              let ok = Array.for_all snd runs in
              Printf.printf "  total slots: %s\n"
                (Summary.to_string (Summary.of_floats totals));
              Printf.printf "  all runs aggregated the exact sum: %b\n" ok
            end;
            if baseline then begin
              let proto = Registry.find_exn "aggregation_baseline_honest" in
              let base =
                Trials.run ~pool ~trials ~seed:(seed + 1000) (fun rng ->
                    let assignment = Topology.generate topology rng spec in
                    let s =
                      Protocol.run proto
                        (Protocol.env ~k
                           ~availability:(Dynamic.static assignment) ~rng ())
                    in
                    float_of_int s.Protocol.slots_run)
              in
              Printf.printf "  rendezvous baseline (honest): %s\n"
                (Summary.to_string (Summary.of_floats base))
            end;
            observe ~trace_path ~metrics_path ~check (fun ~trace ->
                let rng = Rng.create seed in
                let assignment = Topology.generate topology rng spec in
                let values = Array.init n (fun v -> v) in
                if robust then
                  ignore
                    (Cogcomp_robust.run ?faults ~trace ~monoid:Aggregate.sum
                       ~values ~source:0 ~assignment ~k ~rng ())
                else
                  ignore
                    (Cogcomp.run ?faults ~trace ~monoid:Aggregate.sum ~values
                       ~source:0 ~assignment ~k ~rng ())))
  in
  let baseline_arg =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Also run the rendezvous baseline.")
  in
  let robust_arg =
    Arg.(
      value & flag
      & info [ "robust" ]
          ~doc:
            "Run the fault-tolerant COGCOMP variant (watchdogs, mediator \
             re-election, bounded-retry drain) and report coverage, lost \
             values, re-elections and retries. Bit-identical to the plain \
             protocol when no --faults are given.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ k_arg $ topology_arg $ dynamic_arg
       $ seed_arg $ trials_arg $ jobs_arg $ baseline_arg $ robust_arg
       $ faults_arg $ fault_seed_arg $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v (Cmd.info "aggregate" ~doc:"Run COGCOMP data aggregation (Theorem 10).") term

(* ---- game ---- *)

let game_cmd =
  let run c k seed trials jobs complete =
    if k < 1 || k > c then `Error (false, "need 1 <= k <= c")
    else begin
      let game ~rng ~player ~max_rounds =
        if complete then Crn_games.Hitting_game.play_complete ~rng ~c ~player ~max_rounds
        else Crn_games.Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds
      in
      let max_rounds = c * c * 200 in
      Pool.with_pool ~jobs (fun pool ->
          (* One game per trial, one stream per game; losses count as
             max_rounds (the Hitting_game.median_rounds convention). *)
          let median offset make_player =
            let samples =
              Trials.run ~pool ~trials ~seed:(seed + offset) (fun rng ->
                  let player = make_player (Rng.split rng) in
                  let r = game ~rng ~player ~max_rounds in
                  if r.Crn_games.Hitting_game.won then
                    float_of_int r.Crn_games.Hitting_game.rounds
                  else float_of_int max_rounds)
            in
            Summary.median samples
          in
          Printf.printf "%s hitting game  c=%d%s trials=%d\n"
            (if complete then "c-complete" else "(c,k)-bipartite")
            c
            (if complete then "" else Printf.sprintf " k=%d" k)
            trials;
          Printf.printf "  uniform player median rounds:             %.1f\n"
            (median 0 (fun rng -> Crn_games.Players.uniform rng ~c));
          Printf.printf "  without-replacement player median rounds: %.1f\n"
            (median 1 (fun rng -> Crn_games.Players.without_replacement rng ~c));
          Printf.printf "  lower bound (%s): %.1f\n"
            (if complete then "Lemma 14: c/3" else "Lemma 11: c^2/(8k)")
            (if complete then Complexity.complete_game_lower_bound ~c
             else Complexity.bipartite_game_lower_bound ~c ~k ());
          `Ok ())
    end
  in
  let complete_arg =
    Arg.(value & flag & info [ "complete" ] ~doc:"Play the c-complete variant.")
  in
  let term =
    Term.(
      ret (const run $ c_arg $ k_arg $ seed_arg $ trials_arg $ jobs_arg $ complete_arg))
  in
  Cmd.v (Cmd.info "game" ~doc:"Play the §6 bipartite hitting games.") term

(* ---- backoff ---- *)

let backoff_cmd =
  let run contenders seed trials jobs =
    if contenders < 1 then `Error (false, "need at least one contender")
    else begin
      let sessions =
        Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
            match Crn_radio.Backoff.session ~rng ~contenders ~cap:1_000_000 with
            | Some { Crn_radio.Backoff.rounds; _ } -> Some rounds
            | None -> None)
      in
      let samples =
        Array.map (function Some r -> float_of_int r | None -> 0.0) sessions
      in
      let failures =
        Array.fold_left (fun acc s -> if s = None then acc + 1 else acc) 0 sessions
      in
      Printf.printf "decay backoff  m=%d contenders, trials=%d\n" contenders trials;
      Printf.printf "  raw rounds per one-winner slot: %s\n"
        (Summary.to_string (Summary.of_floats samples));
      Printf.printf "  O(log^2 m) budget: %d; failures: %d\n"
        (Crn_radio.Backoff.expected_rounds_bound contenders)
        failures;
      `Ok ()
    end
  in
  let contenders_arg =
    Arg.(value & opt int 64 & info [ "m"; "contenders" ] ~docv:"M" ~doc:"Contenders in the session.")
  in
  let term = Term.(ret (const run $ contenders_arg $ seed_arg $ trials_arg $ jobs_arg)) in
  Cmd.v
    (Cmd.info "backoff" ~doc:"Measure the decay-backoff contention layer (footnote 4).")
    term

(* ---- jam ---- *)

let jam_cmd =
  let run n c budget seed trials jobs trace_path metrics_path check =
    if budget < 0 || 2 * budget >= c then
      `Error (false, "need jamming budget < c/2 (Theorem 18)")
    else begin
      let jammer =
        Crn_radio.Jammer.random_per_node ~seed:(Int64.of_int seed) ~budget
          ~num_channels:c
      in
      let k = Crn_radio.Jamming_reduction.overlap_guarantee ~num_channels:c ~budget in
      let samples =
        Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
            let availability =
              Crn_radio.Jamming_reduction.availability_of_jammer
                ~shuffle_labels:(Rng.split rng) ~num_nodes:n ~num_channels:c
                ~jammer ()
            in
            let max_slots = 8 * Complexity.cogcast_slots ~n ~c:(c - budget) ~k () in
            let r = Cogcast.run ~source:0 ~availability ~rng ~max_slots () in
            match r.Cogcast.completed_at with
            | Some s -> float_of_int s
            | None -> float_of_int r.Cogcast.slots_run)
      in
      Printf.printf "jammed broadcast  n=%d C=%d budget=%d (worst overlap %d)\n" n c
        budget k;
      Printf.printf "  completion slots: %s\n"
        (Summary.to_string (Summary.of_floats samples));
      observe ~trace_path ~metrics_path ~check (fun ~trace ->
          let rng = Rng.create seed in
          let availability =
            Crn_radio.Jamming_reduction.availability_of_jammer
              ~shuffle_labels:(Rng.split rng) ~num_nodes:n ~num_channels:c ~jammer ()
          in
          let max_slots = 8 * Complexity.cogcast_slots ~n ~c:(c - budget) ~k () in
          ignore (Cogcast.run ~trace ~source:0 ~availability ~rng ~max_slots ()))
    end
  in
  let budget_arg =
    Arg.(
      value & opt int 4
      & info [ "budget" ] ~docv:"B" ~doc:"Channels jammed per node per slot.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ budget_arg $ seed_arg $ trials_arg $ jobs_arg
       $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v
    (Cmd.info "jam" ~doc:"Broadcast under an n-uniform jammer (Theorem 18 reduction).")
    term

(* ---- sweep ---- *)

let sweep_cmd =
  let run param values n c k topology seed trials jobs csv =
    let values =
      List.filter_map int_of_string_opt (String.split_on_char ',' values)
    in
    if values = [] then `Error (false, "need --values as a comma-separated int list")
    else begin
      let table = Crn_stats.Table.create [ param; "median slots"; "p90 slots" ] in
      let pts = ref [] in
      let bad = ref None in
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun v ->
              let n, c, k =
                match param with
                | "n" -> (v, c, k)
                | "c" -> (n, v, k)
                | "k" -> (n, c, v)
                | _ -> (n, c, k)
              in
              if n < 1 || k < 1 || k > c then
                bad := Some (Printf.sprintf "invalid point %s=%d (n=%d c=%d k=%d)" param v n c k)
              else begin
                let spec = { Topology.n; c; k } in
                let samples =
                  Trials.run ~pool ~trials ~seed (fun rng ->
                      let assignment = Topology.generate topology rng spec in
                      let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
                      match r.Cogcast.completed_at with
                      | Some s -> float_of_int s
                      | None -> float_of_int r.Cogcast.slots_run)
                in
                let s = Summary.of_floats samples in
                Crn_stats.Table.add_row table
                  [
                    string_of_int v;
                    Printf.sprintf "%.1f" s.Summary.median;
                    Printf.sprintf "%.1f" s.Summary.p90;
                  ];
                pts := (float_of_int v, s.Summary.median) :: !pts
              end)
            values);
      match !bad with
      | Some msg -> `Error (false, msg)
      | None ->
          if not (List.mem param [ "n"; "c"; "k" ]) then
            `Error (false, "param must be one of n, c, k")
          else begin
            Crn_stats.Table.print
              ~title:(Printf.sprintf "COGCAST sweep over %s (topology %s)" param
                        (Topology.kind_name topology))
              table;
            (if List.length !pts >= 2 then
               try
                 let fit = Crn_stats.Fit.log_log (Array.of_list (List.rev !pts)) in
                 Printf.printf "  log-log slope vs %s: %.2f (r2=%.3f)\n" param
                   fit.Crn_stats.Fit.slope fit.Crn_stats.Fit.r2
               with Invalid_argument _ -> ());
            (match csv with
            | Some path ->
                Crn_stats.Csv.write_table ~path table;
                Printf.printf "  wrote %s\n" path
            | None -> ());
            `Ok ()
          end
    end
  in
  let param_arg =
    Arg.(
      value & opt string "n"
      & info [ "param" ] ~docv:"P" ~doc:"Swept parameter: n, c or k.")
  in
  let values_arg =
    Arg.(
      value
      & opt string "32,64,128,256"
      & info [ "values" ] ~docv:"V,V,..." ~doc:"Comma-separated values for the swept parameter.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV to $(docv).")
  in
  let term =
    Term.(
      ret
        (const run $ param_arg $ values_arg $ n_arg $ c_arg $ k_arg $ topology_arg
       $ seed_arg $ trials_arg $ jobs_arg $ csv_arg))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep n, c or k and report COGCAST completion scaling.")
    term

(* ---- chaos ---- *)

(* Degradation campaign: sweep {protocol} x {fault rate} for one fault kind,
   run the trials on the domain pool with a trace per trial, replay every
   trace through the invariant checkers, and emit the degradation curve
   (completion rate, coverage, slot inflation vs fault rate) as JSON.
   Protocols are resolved through the registry, so any registered protocol —
   the baselines included — can be put on the same curve. *)

let chaos_cmd =
  let run n c k topology dynamic seed fault_seed trials jobs shards
      backend_choice session_cap dense_channel_limit kind protocols rates
      json_path check =
    let protos =
      String.split_on_char ',' protocols
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             let name =
               if String.lowercase_ascii s = "robust" then "cogcomp_robust" else s
             in
             match Registry.find name with
             | Some p -> Ok p
             | None ->
                 Error
                   (Printf.sprintf
                      "unknown protocol %S (try: %s, or jam_resist:<name>)" s
                      (String.concat ", " (Registry.names ()))))
    in
    let rates =
      String.split_on_char ',' rates
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match float_of_string_opt s with
             | Some r when r >= 0.0 && r < 1.0 -> Ok r
             | _ -> Error (Printf.sprintf "rate %S must be a float in [0, 1)" s))
    in
    let first_error l =
      List.find_map (function Error m -> Some m | Ok _ -> None) l
    in
    match
      ( check_params n c k,
        first_error protos,
        first_error rates,
        Adversary_lab.fault_kind_of_string kind,
        build_backend ?dense_channel_limit backend_choice session_cap )
    with
    | (`Error _ as e), _, _, _, _ -> e
    | _, Some m, _, _, _ | _, _, Some m, _, _ -> `Error (false, m)
    | _, _, _, Error m, _ | _, _, _, _, Error m -> `Error (false, m)
    | `Ok (), None, None, Ok kind, Ok backend -> (
        let protos = List.filter_map Result.to_option protos in
        let rates = List.filter_map Result.to_option rates in
        let spec = { Topology.n; c; k } in
        let kind_name = Adversary_lab.fault_kind_name kind in
        match
          ( check_dynamic ~mode:dynamic ~spec (List.map Protocol.name protos),
            check_shards ~backend ~shards (List.map Protocol.name protos) )
        with
        | (`Error _ as e), _ -> e
        | `Ok (), Some m -> `Error (false, m)
        | `Ok (), None ->
        (* Selftest hook: with CRN_CHAOS_INJECT_VIOLATION set, every trial
           reports one fake violation, so the --check exit-code path can be
           tested end to end (healthy runs have nothing to fail on). *)
        let checker =
          if Sys.getenv_opt "CRN_CHAOS_INJECT_VIOLATION" = None then None
          else
            Some
              (fun _ ->
                [
                  {
                    Trace.Check.invariant = "selftest";
                    detail = "injected by CRN_CHAOS_INJECT_VIOLATION";
                  };
                ])
        in
        let run_trial proto ~rate rng =
          (* Each trial gets its own fault stream, derived from the trial's
             RNG so --fault-seed shifts all of them at once. *)
          let trial_fault_seed =
            Int64.add (Int64.of_int fault_seed)
              (Int64.mul 0x9E3779B97F4A7C15L (Rng.bits64 rng))
          in
          let faults, jammer =
            Adversary_lab.adversary_for ~kind ~rate ~n
              ~fault_seed:trial_fault_seed
          in
          let t =
            Adversary_lab.run_trial ?checker proto (fun ~trace ->
                (match jammer with
                | Some j ->
                    Trace.record trace
                      (Trace.Adversary
                         { name = Jammer.name j; budget = Jammer.budget j })
                | None -> ());
                let availability, rng =
                  armed_availability ~mode:dynamic ~topology ~spec ~trace ~rng
                    ()
                in
                Protocol.env ?faults ?jammer ~trace ~backend ~k ~shards
                  ~availability ~rng ())
          in
          let s = t.Adversary_lab.summary in
          ( s.Protocol.completed,
            s.Protocol.coverage,
            s.Protocol.slots_run,
            List.length t.Adversary_lab.violations,
            t.Adversary_lab.trace_jsonl )
        in
        Pool.with_pool ~jobs (fun pool ->
            let failures = ref [] in
            let proto_objs =
              List.map
                (fun proto ->
                  let baseline_slots = ref None in
                  let points =
                    List.map
                      (fun rate ->
                        let cell =
                          Trials.run ~pool ~trials
                            ~seed:(seed + int_of_float (rate *. 1_000_000.))
                            (run_trial proto ~rate)
                        in
                        let mean f =
                          Array.fold_left (fun acc x -> acc +. f x) 0.0 cell
                          /. float_of_int (Array.length cell)
                        in
                        let completion =
                          mean (fun (c, _, _, _, _) -> if c then 1.0 else 0.0)
                        in
                        let coverage = mean (fun (_, cov, _, _, _) -> cov) in
                        let slots =
                          mean (fun (_, _, s, _, _) -> float_of_int s)
                        in
                        if rate = 0.0 && !baseline_slots = None then
                          baseline_slots := Some slots;
                        let inflation =
                          match !baseline_slots with
                          | Some b when b > 0.0 -> slots /. b
                          | _ -> Float.nan
                        in
                        let violations =
                          Array.fold_left
                            (fun acc (_, _, _, v, _) -> acc + v)
                            0 cell
                        in
                        (* Any violation is a simulator bug, not
                           degradation: adversaries may slow a protocol
                           down, but a trace that breaks the invariants
                           means the machinery lied. Every trial is held
                           to the same standard. *)
                        Array.iteri
                          (fun i (_, _, _, v, dump) ->
                            match dump with
                            | Some jsonl ->
                                let path =
                                  Printf.sprintf
                                    "trace_failure_%s_%s_rate%g_trial%d.jsonl"
                                    kind_name
                                    (Protocol.name proto) rate i
                                in
                                let oc = open_out path in
                                output_string oc jsonl;
                                close_out oc;
                                failures :=
                                  Printf.sprintf
                                    "%s %s rate=%g trial=%d: %d violation(s), \
                                     trace in %s"
                                    kind_name (Protocol.name proto) rate i v
                                    path
                                  :: !failures
                            | None -> ())
                          cell;
                        Printf.printf
                          "  %-15s rate=%-5g completion=%.2f coverage=%.2f \
                           slots=%.0f inflation=%.2f violations=%d\n%!"
                          (Protocol.name proto) rate completion coverage slots
                          inflation violations;
                        Json.Obj
                          [
                            ("rate", Json.Float rate);
                            ("completion_rate", Json.Float completion);
                            ("mean_coverage", Json.Float coverage);
                            ("mean_total_slots", Json.Float slots);
                            ("slot_inflation", Json.Float inflation);
                            ("violations", Json.Int violations);
                          ])
                      rates
                  in
                  Json.Obj
                    [
                      ("protocol", Json.String (Protocol.name proto));
                      ("points", Json.List points);
                    ])
                protos
            in
            Printf.printf
              "chaos  n=%d c=%d k=%d topology=%s kind=%s dynamic=%s \
               backend=%s trials=%d/point\n"
              n c k
              (Topology.kind_name topology) kind_name
              (Adversary_lab.mode_name dynamic) (backend_name backend) trials;
            let doc =
              Json.Obj
                [
                  ("schema", Json.String "crn-chaos/1");
                  ("n", Json.Int n);
                  ("c", Json.Int c);
                  ("k", Json.Int k);
                  ("topology", Json.String (Topology.kind_name topology));
                  ("fault_kind", Json.String kind_name);
                  ("dynamic", Json.String (Adversary_lab.mode_name dynamic));
                  ("backend", Json.String (backend_name backend));
                  ("trials", Json.Int trials);
                  ("seed", Json.Int seed);
                  ("fault_seed", Json.Int fault_seed);
                  ("protocols", Json.List proto_objs);
                ]
            in
            (match json_path with
            | Some path ->
                Json.write ~path doc;
                Printf.printf "  wrote %s\n" path
            | None -> ());
            match !failures with
            | [] -> `Ok ()
            | fs when check ->
                List.iter (Format.eprintf "  violation: %s@.") fs;
                `Error
                  ( false,
                    Printf.sprintf "chaos --check: %d cell(s) violated invariants"
                      (List.length fs) )
            | fs ->
                List.iter (Format.eprintf "  warning: %s@.") fs;
                `Ok ()))
  in
  let kind_arg =
    Arg.(
      value & opt string "naps"
      & info [ "fault-kind" ] ~docv:"KIND"
          ~doc:
            "Fault family swept over --rates: $(b,naps) (memoryless per-slot \
             misses), $(b,churn) (up/down Markov chains, rate = stationary \
             down fraction), $(b,crash) (rate = fraction of nodes crashed \
             permanently), $(b,jam) (reactive jammer on the busiest channel; \
             any nonzero rate enables it). The source is always spared.")
  in
  let protocols_arg =
    Arg.(
      value
      & opt string "cogcast,cogcomp,cogcomp-robust"
      & info [ "protocols" ] ~docv:"P,P,..."
          ~doc:
            "Comma-separated registry names (see $(b,crn_sim protocols)); \
             $(b,jam_resist:NAME) puts the Theorem 18 transform on the \
             same curve as its plain protocol.")
  in
  let rates_arg =
    Arg.(
      value
      & opt string "0,0.02,0.05,0.1"
      & info [ "rates" ] ~docv:"R,R,..."
          ~doc:"Comma-separated fault rates in [0, 1); include 0 to anchor \
                the slot-inflation baseline.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the degradation curves as JSON (schema crn-chaos/1).")
  in
  let chaos_check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit nonzero if $(i,any) trial of $(i,any) protocol violates \
             the trace invariants. Adversaries may degrade completion or \
             coverage without tripping the checkers, so put only protocols \
             whose contracts cover the armed fault family on a --check \
             curve (plain cogcomp, for instance, promises exactly-once \
             accounting only fault-free). Violating traces are dumped to \
             trace_failure_*.jsonl either way.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ k_arg $ topology_arg $ dynamic_arg
       $ seed_arg $ fault_seed_arg $ trials_arg $ jobs_arg $ shards_arg
       $ backend_arg $ session_cap_arg $ dense_channel_limit_arg $ kind_arg
       $ protocols_arg $ rates_arg $ json_arg $ chaos_check_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep protocols across fault rates, check per-trial trace \
          invariants, and emit degradation curves.")
    term

(* ---- load: sustained-traffic workloads ---- *)

let load_cmd =
  let arrivals_conv =
    let parse = function
      | "poisson" -> Ok Protocol.Poisson
      | "uniform" -> Ok Protocol.Uniform
      | s -> Error (`Msg (Printf.sprintf "unknown arrival law %S (poisson|uniform)" s))
    in
    Arg.conv
      ( parse,
        fun fmt law ->
          Format.pp_print_string fmt
            (match law with Protocol.Poisson -> "poisson" | Protocol.Uniform -> "uniform")
      )
  in
  let run name rate arrivals rumors n c k topology seed trials jobs shards
      backend_choice dense_channel_limit faults_spec fault_seed trace_path
      metrics_path check json_path =
    match (check_params n c k, Registry.find name) with
    | (`Error _ as e), _ -> e
    | `Ok (), None ->
        `Error
          ( false,
            Printf.sprintf "unknown protocol %S (try gossip or push_sum)" name )
    | `Ok (), Some _ when not (rate > 0.0) -> `Error (false, "rate must be > 0")
    | `Ok (), Some _ when rumors < 1 -> `Error (false, "rumors must be >= 1")
    | `Ok (), Some proto -> (
        match build_backend ?dense_channel_limit backend_choice None with
        | Error m -> `Error (false, m)
        | Ok backend ->
        match check_shards ~backend ~shards [ Protocol.name proto ] with
        | Some m -> `Error (false, m)
        | None ->
        let spec = { Topology.n; c; k } in
        let load = { Protocol.rate; arrivals; rumors } in
        let faults = build_faults faults_spec fault_seed in
        let env ?trace ~rng () =
          let assignment = Topology.generate topology rng spec in
          Protocol.env ?faults ?trace ~backend ~k ~shards ~load
            ~availability:(Dynamic.static assignment) ~rng ()
        in
        let summaries =
          Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
              Protocol.run proto (env ~rng ()))
        in
        let detail_float key (s : Protocol.summary) =
          match Json.member key s.Protocol.detail with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> 0.0
        in
        let latencies =
          Array.to_list summaries
          |> List.concat_map (fun (s : Protocol.summary) ->
                 match Json.member "latencies" s.Protocol.detail with
                 | Some (Json.List l) ->
                     List.filter_map
                       (function Json.Float f -> Some f | _ -> None)
                       l
                 | _ -> [])
          |> Array.of_list
        in
        let mean f =
          Array.fold_left (fun acc s -> acc +. f s) 0.0 summaries
          /. float_of_int (max 1 (Array.length summaries))
        in
        let throughput_key =
          if Protocol.name proto = "push_sum" then "transfer_rate" else "throughput"
        in
        let throughput = mean (detail_float throughput_key) in
        let completion =
          mean (fun s -> if s.Protocol.completed then 1.0 else 0.0)
        in
        let coverage = mean (fun s -> s.Protocol.coverage) in
        let slots = mean (fun s -> float_of_int s.Protocol.slots_run) in
        let pct p =
          if Array.length latencies = 0 then Float.nan
          else Summary.percentile latencies p
        in
        Printf.printf "load  %s  n=%d c=%d k=%d topology=%s trials=%d\n"
          (Protocol.name proto) n c k (Topology.kind_name topology) trials;
        Printf.printf "  offered: rate=%g rumors/slot (%s), batch=%d rumors\n" rate
          (match arrivals with Protocol.Poisson -> "poisson" | Protocol.Uniform -> "uniform")
          rumors;
        (match faults with
        | Some f ->
            Printf.printf "  faults: %s (seed %d)\n" (Faults.to_string f) fault_seed
        | None -> ());
        Printf.printf "  completion: %.2f; mean coverage: %.3f; mean slots: %.0f\n"
          completion coverage slots;
        Printf.printf "  goodput: %.4f %s\n" throughput
          (if Protocol.name proto = "push_sum" then "transfers/slot"
           else "rumors/slot");
        if Array.length latencies > 0 then
          Printf.printf "  latency slots: p50=%.0f p95=%.0f p99=%.0f (%d samples)\n"
            (pct 50.0) (pct 95.0) (pct 99.0) (Array.length latencies)
        else Printf.printf "  latency slots: no samples\n";
        (match json_path with
        | Some path ->
            let doc =
              Json.Obj
                [
                  ("schema", Json.String "crn-load/1");
                  ("protocol", Json.String (Protocol.name proto));
                  ("n", Json.Int n);
                  ("c", Json.Int c);
                  ("k", Json.Int k);
                  ("topology", Json.String (Topology.kind_name topology));
                  ("rate", Json.Float rate);
                  ( "arrivals",
                    Json.String
                      (match arrivals with
                      | Protocol.Poisson -> "poisson"
                      | Protocol.Uniform -> "uniform") );
                  ("rumors", Json.Int rumors);
                  ("trials", Json.Int trials);
                  ("seed", Json.Int seed);
                  ("completion_rate", Json.Float completion);
                  ("mean_coverage", Json.Float coverage);
                  ("mean_slots", Json.Float slots);
                  ("throughput", Json.Float throughput);
                  ("latency_p50", Json.Float (pct 50.0));
                  ("latency_p95", Json.Float (pct 95.0));
                  ("latency_p99", Json.Float (pct 99.0));
                  ( "per_trial",
                    Json.List
                      (Array.to_list
                         (Array.map Protocol.summary_json summaries)) );
                ]
            in
            Json.write ~path doc;
            Printf.printf "  wrote %s\n" path
        | None -> ());
        observe ~trace_path ~metrics_path ~check (fun ~trace ->
            let rng = Rng.create seed in
            ignore (Protocol.run proto (env ~trace ~rng ()))))
  in
  let protocol_arg =
    Arg.(
      value
      & opt string "gossip"
      & info [ "p"; "protocol" ] ~docv:"NAME"
          ~doc:"Workload protocol: $(b,gossip) or $(b,push_sum).")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.2
      & info [ "rate" ] ~docv:"R"
          ~doc:"Offered load: rumor arrivals per slot, network-wide.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt arrivals_conv Protocol.Poisson
      & info [ "arrivals" ] ~docv:"LAW"
          ~doc:"Inter-arrival law: $(b,poisson) or $(b,uniform).")
  in
  let rumors_arg =
    Arg.(
      value & opt int 16
      & info [ "rumors" ] ~docv:"K"
          ~doc:
            "Rumors in the workload batch; the run drains until all \
             complete or the budget runs out.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write throughput/latency results as JSON (schema crn-load/1), \
             including every trial's full summary.")
  in
  let term =
    Term.(
      ret
        (const run $ protocol_arg $ rate_arg $ arrivals_arg $ rumors_arg $ n_arg
       $ c_arg $ k_arg $ topology_arg $ seed_arg $ trials_arg $ jobs_arg
       $ shards_arg $ backend_arg $ dense_channel_limit_arg $ faults_arg
       $ fault_seed_arg $ trace_arg $ metrics_arg $ check_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a sustained-traffic workload (multi-rumor gossip or push-sum) \
          under an open-loop load generator and report throughput and \
          latency percentiles.")
    term

let () =
  let info =
    Cmd.info "crn_sim" ~version:"1.0.0"
      ~doc:"Cognitive radio network protocols from Gilbert et al., PODC 2015"
  in
  let group =
    Cmd.group info
      [
        protocols_cmd;
        run_cmd;
        broadcast_cmd;
        aggregate_cmd;
        game_cmd;
        backoff_cmd;
        jam_cmd;
        sweep_cmd;
        chaos_cmd;
        load_cmd;
      ]
  in
  exit (Cmd.eval group)
