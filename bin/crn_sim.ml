(* crn_sim: command-line front end for the cognitive radio network simulator.

   Subcommands:
     broadcast  — run COGCAST and report completion statistics
     aggregate  — run COGCOMP (and optionally the rendezvous baseline)
     game       — play the §6 hitting games against the closed-form bounds
     backoff    — measure the decay-backoff realization of the slot model
     jam        — broadcast under an n-uniform jammer (Theorem 18 reduction)
     sweep      — sweep n, c or k and report completion scaling

   Every run is reproducible from --seed: trials execute on a domain pool
   sized by --jobs, with one RNG stream split off per trial up front, so
   the numbers are identical at any --jobs value. *)

open Cmdliner
module Rng = Crn_prng.Rng
module Pool = Crn_exec.Pool
module Trials = Crn_exec.Trials
module Topology = Crn_channel.Topology
module Summary = Crn_stats.Summary
module Cogcast = Crn_core.Cogcast
module Cogcomp = Crn_core.Cogcomp
module Aggregate = Crn_core.Aggregate
module Complexity = Crn_core.Complexity

(* ---- shared arguments ---- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let trials_arg =
  Arg.(value & opt int 9 & info [ "trials" ] ~docv:"T" ~doc:"Independent trials.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains running trials in parallel. Results are identical at any \
           value, including 1 (the seed determines every trial's stream, \
           not the schedule).")

let n_arg = Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let c_arg =
  Arg.(value & opt int 16 & info [ "c"; "channels" ] ~docv:"C" ~doc:"Channels per node.")

let k_arg =
  Arg.(
    value & opt int 4
    & info [ "k"; "overlap" ] ~docv:"K" ~doc:"Guaranteed pairwise channel overlap.")

let topology_conv =
  let parse s =
    match
      List.find_opt (fun kd -> Topology.kind_name kd = s) Topology.all_kinds
    with
    | Some kd -> Ok kd
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown topology %S (try: %s)" s
               (String.concat ", " (List.map Topology.kind_name Topology.all_kinds))))
  in
  Arg.conv (parse, fun fmt kd -> Format.pp_print_string fmt (Topology.kind_name kd))

let topology_arg =
  Arg.(
    value
    & opt topology_conv Topology.Shared_plus_random
    & info [ "topology" ] ~docv:"KIND"
        ~doc:
          "Overlap pattern: shared-core, identical, shared+random, \
           pairwise-private or clustered.")

let check_params n c k =
  if n < 1 then `Error (false, "n must be at least 1")
  else if k < 1 || k > c then `Error (false, "need 1 <= k <= c")
  else `Ok ()

(* ---- observability (--trace / --metrics / --check) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record one instrumented run's slot-level event trace and write it \
           as JSON Lines (one event object per line) to $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Derive the metrics registry (counters and histograms) from one \
           instrumented run's trace and write it as JSON to $(docv).")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Replay one instrumented run's trace through the invariant \
           checkers (one winner per channel per slot, informer precedes \
           informee, phase-4 conservation). Exits nonzero on violation.")

(* When any of --trace/--metrics/--check was requested, perform one extra
   instrumented run via [f ~trace] (the statistics trials above stay
   untraced, so their wall-clock is unaffected) and export/verify its
   event stream. *)
let observe ~trace_path ~metrics_path ~check f =
  if trace_path = None && metrics_path = None && not check then `Ok ()
  else begin
    let tr = Crn_radio.Trace.create () in
    f ~trace:tr;
    (match trace_path with
    | Some path ->
        Crn_radio.Trace.write_jsonl ~path tr;
        Printf.printf "  wrote trace: %s (%d events)\n" path
          (Crn_radio.Trace.length tr)
    | None -> ());
    (match metrics_path with
    | Some path ->
        let reg = Crn_radio.Metrics.Registry.create () in
        Crn_radio.Metrics.Registry.observe_trace reg tr;
        Crn_stats.Json.write ~path (Crn_radio.Metrics.Registry.to_json reg);
        Printf.printf "  wrote metrics: %s\n" path
    | None -> ());
    if not check then `Ok ()
    else begin
      match Crn_radio.Trace.Check.all tr with
      | [] ->
          Printf.printf "  trace invariants: ok (%d events)\n"
            (Crn_radio.Trace.length tr);
          `Ok ()
      | violations ->
          List.iter
            (fun v ->
              Format.eprintf "  violation: %a@." Crn_radio.Trace.Check.pp_violation v)
            violations;
          `Error
            ( false,
              Printf.sprintf "--check found %d trace invariant violation(s)"
                (List.length violations) )
    end
  end

(* ---- broadcast ---- *)

let broadcast_cmd =
  let run n c k topology seed trials jobs trace_path metrics_path check =
    match check_params n c k with
    | `Error _ as e -> e
    | `Ok () ->
        let spec = { Topology.n; c; k } in
        let samples =
          Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
              let assignment = Topology.generate topology rng spec in
              let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
              match r.Cogcast.completed_at with
              | Some s -> float_of_int s
              | None -> float_of_int r.Cogcast.slots_run)
        in
        let s = Summary.of_floats samples in
        Printf.printf "COGCAST  n=%d c=%d k=%d topology=%s trials=%d\n" n c k
          (Topology.kind_name topology) trials;
        Printf.printf "  completion slots: %s\n" (Summary.to_string s);
        Printf.printf "  Theorem 4 shape (unit constant): %.1f; budget used: %d\n"
          (Complexity.cogcast ~factor:1.0 ~n ~c ~k ())
          (Complexity.cogcast_slots ~n ~c ~k ());
        observe ~trace_path ~metrics_path ~check (fun ~trace ->
            let rng = Rng.create seed in
            let assignment = Topology.generate topology rng spec in
            ignore (Cogcast.run_static ~trace ~source:0 ~assignment ~k ~rng ()))
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ k_arg $ topology_arg $ seed_arg $ trials_arg
       $ jobs_arg $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v (Cmd.info "broadcast" ~doc:"Run COGCAST local broadcast (Theorem 4).") term

(* ---- aggregate ---- *)

let aggregate_cmd =
  let run n c k topology seed trials jobs baseline trace_path metrics_path check =
    match check_params n c k with
    | `Error _ as e -> e
    | `Ok () ->
        let spec = { Topology.n; c; k } in
        Pool.with_pool ~jobs (fun pool ->
            let runs =
              Trials.run ~pool ~trials ~seed (fun rng ->
                  let assignment = Topology.generate topology rng spec in
                  let values = Array.init n (fun v -> v) in
                  let r =
                    Cogcomp.run ~monoid:Aggregate.sum ~values ~source:0 ~assignment
                      ~k ~rng ()
                  in
                  ( float_of_int r.Cogcomp.total_slots,
                    r.Cogcomp.root_value = Some (n * (n - 1) / 2) ))
            in
            let totals = Array.map fst runs in
            let ok = Array.for_all snd runs in
            Printf.printf "COGCOMP  n=%d c=%d k=%d topology=%s trials=%d\n" n c k
              (Topology.kind_name topology) trials;
            Printf.printf "  total slots: %s\n" (Summary.to_string (Summary.of_floats totals));
            Printf.printf "  all runs aggregated the exact sum: %b\n" ok;
            if baseline then begin
              let base =
                Trials.run ~pool ~trials ~seed:(seed + 1000) (fun rng ->
                    let assignment = Topology.generate topology rng spec in
                    let values = Array.init n (fun v -> v) in
                    let r =
                      Crn_rendezvous.Aggregation_baseline.run_static ~ack:false
                        ~monoid:Aggregate.sum ~values ~source:0 ~assignment ~k ~rng ()
                    in
                    float_of_int r.Crn_rendezvous.Aggregation_baseline.slots_run)
              in
              Printf.printf "  rendezvous baseline (honest): %s\n"
                (Summary.to_string (Summary.of_floats base))
            end;
            observe ~trace_path ~metrics_path ~check (fun ~trace ->
                let rng = Rng.create seed in
                let assignment = Topology.generate topology rng spec in
                let values = Array.init n (fun v -> v) in
                ignore
                  (Cogcomp.run ~trace ~monoid:Aggregate.sum ~values ~source:0
                     ~assignment ~k ~rng ())))
  in
  let baseline_arg =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Also run the rendezvous baseline.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ k_arg $ topology_arg $ seed_arg $ trials_arg
       $ jobs_arg $ baseline_arg $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v (Cmd.info "aggregate" ~doc:"Run COGCOMP data aggregation (Theorem 10).") term

(* ---- game ---- *)

let game_cmd =
  let run c k seed trials jobs complete =
    if k < 1 || k > c then `Error (false, "need 1 <= k <= c")
    else begin
      let game ~rng ~player ~max_rounds =
        if complete then Crn_games.Hitting_game.play_complete ~rng ~c ~player ~max_rounds
        else Crn_games.Hitting_game.play_bipartite ~rng ~c ~k ~player ~max_rounds
      in
      let max_rounds = c * c * 200 in
      Pool.with_pool ~jobs (fun pool ->
          (* One game per trial, one stream per game; losses count as
             max_rounds (the Hitting_game.median_rounds convention). *)
          let median offset make_player =
            let samples =
              Trials.run ~pool ~trials ~seed:(seed + offset) (fun rng ->
                  let player = make_player (Rng.split rng) in
                  let r = game ~rng ~player ~max_rounds in
                  if r.Crn_games.Hitting_game.won then
                    float_of_int r.Crn_games.Hitting_game.rounds
                  else float_of_int max_rounds)
            in
            Summary.median samples
          in
          Printf.printf "%s hitting game  c=%d%s trials=%d\n"
            (if complete then "c-complete" else "(c,k)-bipartite")
            c
            (if complete then "" else Printf.sprintf " k=%d" k)
            trials;
          Printf.printf "  uniform player median rounds:             %.1f\n"
            (median 0 (fun rng -> Crn_games.Players.uniform rng ~c));
          Printf.printf "  without-replacement player median rounds: %.1f\n"
            (median 1 (fun rng -> Crn_games.Players.without_replacement rng ~c));
          Printf.printf "  lower bound (%s): %.1f\n"
            (if complete then "Lemma 14: c/3" else "Lemma 11: c^2/(8k)")
            (if complete then Complexity.complete_game_lower_bound ~c
             else Complexity.bipartite_game_lower_bound ~c ~k ());
          `Ok ())
    end
  in
  let complete_arg =
    Arg.(value & flag & info [ "complete" ] ~doc:"Play the c-complete variant.")
  in
  let term =
    Term.(
      ret (const run $ c_arg $ k_arg $ seed_arg $ trials_arg $ jobs_arg $ complete_arg))
  in
  Cmd.v (Cmd.info "game" ~doc:"Play the §6 bipartite hitting games.") term

(* ---- backoff ---- *)

let backoff_cmd =
  let run contenders seed trials jobs =
    if contenders < 1 then `Error (false, "need at least one contender")
    else begin
      let sessions =
        Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
            match Crn_radio.Backoff.session ~rng ~contenders ~cap:1_000_000 with
            | Some { Crn_radio.Backoff.rounds; _ } -> Some rounds
            | None -> None)
      in
      let samples =
        Array.map (function Some r -> float_of_int r | None -> 0.0) sessions
      in
      let failures =
        Array.fold_left (fun acc s -> if s = None then acc + 1 else acc) 0 sessions
      in
      Printf.printf "decay backoff  m=%d contenders, trials=%d\n" contenders trials;
      Printf.printf "  raw rounds per one-winner slot: %s\n"
        (Summary.to_string (Summary.of_floats samples));
      Printf.printf "  O(log^2 m) budget: %d; failures: %d\n"
        (Crn_radio.Backoff.expected_rounds_bound contenders)
        failures;
      `Ok ()
    end
  in
  let contenders_arg =
    Arg.(value & opt int 64 & info [ "m"; "contenders" ] ~docv:"M" ~doc:"Contenders in the session.")
  in
  let term = Term.(ret (const run $ contenders_arg $ seed_arg $ trials_arg $ jobs_arg)) in
  Cmd.v
    (Cmd.info "backoff" ~doc:"Measure the decay-backoff contention layer (footnote 4).")
    term

(* ---- jam ---- *)

let jam_cmd =
  let run n c budget seed trials jobs trace_path metrics_path check =
    if budget < 0 || 2 * budget >= c then
      `Error (false, "need jamming budget < c/2 (Theorem 18)")
    else begin
      let jammer =
        Crn_radio.Jammer.random_per_node ~seed:(Int64.of_int seed) ~budget
          ~num_channels:c
      in
      let k = Crn_radio.Jamming_reduction.overlap_guarantee ~num_channels:c ~budget in
      let samples =
        Trials.run_jobs ~jobs ~trials ~seed (fun rng ->
            let availability =
              Crn_radio.Jamming_reduction.availability_of_jammer
                ~shuffle_labels:(Rng.split rng) ~num_nodes:n ~num_channels:c
                ~jammer ()
            in
            let max_slots = 8 * Complexity.cogcast_slots ~n ~c:(c - budget) ~k () in
            let r = Cogcast.run ~source:0 ~availability ~rng ~max_slots () in
            match r.Cogcast.completed_at with
            | Some s -> float_of_int s
            | None -> float_of_int r.Cogcast.slots_run)
      in
      Printf.printf "jammed broadcast  n=%d C=%d budget=%d (worst overlap %d)\n" n c
        budget k;
      Printf.printf "  completion slots: %s\n"
        (Summary.to_string (Summary.of_floats samples));
      observe ~trace_path ~metrics_path ~check (fun ~trace ->
          let rng = Rng.create seed in
          let availability =
            Crn_radio.Jamming_reduction.availability_of_jammer
              ~shuffle_labels:(Rng.split rng) ~num_nodes:n ~num_channels:c ~jammer ()
          in
          let max_slots = 8 * Complexity.cogcast_slots ~n ~c:(c - budget) ~k () in
          ignore (Cogcast.run ~trace ~source:0 ~availability ~rng ~max_slots ()))
    end
  in
  let budget_arg =
    Arg.(
      value & opt int 4
      & info [ "budget" ] ~docv:"B" ~doc:"Channels jammed per node per slot.")
  in
  let term =
    Term.(
      ret
        (const run $ n_arg $ c_arg $ budget_arg $ seed_arg $ trials_arg $ jobs_arg
       $ trace_arg $ metrics_arg $ check_arg))
  in
  Cmd.v
    (Cmd.info "jam" ~doc:"Broadcast under an n-uniform jammer (Theorem 18 reduction).")
    term

(* ---- sweep ---- *)

let sweep_cmd =
  let run param values n c k topology seed trials jobs csv =
    let values =
      List.filter_map int_of_string_opt (String.split_on_char ',' values)
    in
    if values = [] then `Error (false, "need --values as a comma-separated int list")
    else begin
      let table = Crn_stats.Table.create [ param; "median slots"; "p90 slots" ] in
      let pts = ref [] in
      let bad = ref None in
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun v ->
              let n, c, k =
                match param with
                | "n" -> (v, c, k)
                | "c" -> (n, v, k)
                | "k" -> (n, c, v)
                | _ -> (n, c, k)
              in
              if n < 1 || k < 1 || k > c then
                bad := Some (Printf.sprintf "invalid point %s=%d (n=%d c=%d k=%d)" param v n c k)
              else begin
                let spec = { Topology.n; c; k } in
                let samples =
                  Trials.run ~pool ~trials ~seed (fun rng ->
                      let assignment = Topology.generate topology rng spec in
                      let r = Cogcast.run_static ~source:0 ~assignment ~k ~rng () in
                      match r.Cogcast.completed_at with
                      | Some s -> float_of_int s
                      | None -> float_of_int r.Cogcast.slots_run)
                in
                let s = Summary.of_floats samples in
                Crn_stats.Table.add_row table
                  [
                    string_of_int v;
                    Printf.sprintf "%.1f" s.Summary.median;
                    Printf.sprintf "%.1f" s.Summary.p90;
                  ];
                pts := (float_of_int v, s.Summary.median) :: !pts
              end)
            values);
      match !bad with
      | Some msg -> `Error (false, msg)
      | None ->
          if not (List.mem param [ "n"; "c"; "k" ]) then
            `Error (false, "param must be one of n, c, k")
          else begin
            Crn_stats.Table.print
              ~title:(Printf.sprintf "COGCAST sweep over %s (topology %s)" param
                        (Topology.kind_name topology))
              table;
            (if List.length !pts >= 2 then
               try
                 let fit = Crn_stats.Fit.log_log (Array.of_list (List.rev !pts)) in
                 Printf.printf "  log-log slope vs %s: %.2f (r2=%.3f)\n" param
                   fit.Crn_stats.Fit.slope fit.Crn_stats.Fit.r2
               with Invalid_argument _ -> ());
            (match csv with
            | Some path ->
                Crn_stats.Csv.write_table ~path table;
                Printf.printf "  wrote %s\n" path
            | None -> ());
            `Ok ()
          end
    end
  in
  let param_arg =
    Arg.(
      value & opt string "n"
      & info [ "param" ] ~docv:"P" ~doc:"Swept parameter: n, c or k.")
  in
  let values_arg =
    Arg.(
      value
      & opt string "32,64,128,256"
      & info [ "values" ] ~docv:"V,V,..." ~doc:"Comma-separated values for the swept parameter.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV to $(docv).")
  in
  let term =
    Term.(
      ret
        (const run $ param_arg $ values_arg $ n_arg $ c_arg $ k_arg $ topology_arg
       $ seed_arg $ trials_arg $ jobs_arg $ csv_arg))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep n, c or k and report COGCAST completion scaling.")
    term

let () =
  let info =
    Cmd.info "crn_sim" ~version:"1.0.0"
      ~doc:"Cognitive radio network protocols from Gilbert et al., PODC 2015"
  in
  let group =
    Cmd.group info
      [ broadcast_cmd; aggregate_cmd; game_cmd; backoff_cmd; jam_cmd; sweep_cmd ]
  in
  exit (Cmd.eval group)
